// Benchmarks regenerating each table and figure of the paper at reduced
// scale (the cmd/experiments binary runs them at full scale). Custom
// metrics report the headline quantity of each figure so the shape of the
// result is visible straight from `go test -bench`.
package repro

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/parboil"
	"repro/internal/policy"
	"repro/internal/preempt"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchOpts are reduced-scale experiment options for benchmarking: the
// shape-defining statistics (occupancy, preemption latencies, per-TB times)
// are preserved; only makespans shrink.
func benchOpts(sizes ...int) experiments.Options {
	return experiments.Options{
		Sizes:   sizes,
		PerSize: 5,
		Seed:    2014,
		Scale:   48,
		MinRuns: 2,
	}
}

// BenchmarkTable1 recomputes the derived columns of Table 1.
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 24 {
			b.Fatal("row count")
		}
	}
}

// BenchmarkFig2 regenerates the motivating preemption timeline (Figure 2)
// and reports the speedup of the soft real-time kernel under PPQ vs FCFS.
func BenchmarkFig2(b *testing.B) {
	b.ReportAllocs()
	var last *experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunFig2(uint64(i+1), experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.FCFS)/float64(last.PPQ), "x-ppq-speedup")
	b.ReportMetric(float64(last.FCFS)/float64(last.NPQ), "x-npq-speedup")
}

// BenchmarkFig5 regenerates the high-priority NTT improvement figure for
// 4-process workloads and reports the average improvements.
func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	var fig5 *experiments.Fig5Result
	for i := 0; i < b.N; i++ {
		f5, _, err := experiments.RunPriority(benchOpts(4))
		if err != nil {
			b.Fatal(err)
		}
		fig5 = f5
	}
	if v, ok := fig5.Improvement("AVERAGE", experiments.SchedNPQ, 4); ok {
		b.ReportMetric(v, "x-npq")
	}
	if v, ok := fig5.Improvement("AVERAGE", experiments.SchedPPQCS, 4); ok {
		b.ReportMetric(v, "x-ppq-cs")
	}
	if v, ok := fig5.Improvement("AVERAGE", experiments.SchedPPQDrain, 4); ok {
		b.ReportMetric(v, "x-ppq-drain")
	}
}

// BenchmarkFig6 regenerates the STP-degradation figure for 4-process
// workloads and reports the exclusive-access degradations.
func BenchmarkFig6(b *testing.B) {
	b.ReportAllocs()
	var fig6 *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		_, f6, err := experiments.RunPriority(benchOpts(4))
		if err != nil {
			b.Fatal(err)
		}
		fig6 = f6
	}
	if v, ok := fig6.Degradation("exclusive", "Context Switch", 4); ok {
		b.ReportMetric(v, "x-stp-deg-cs")
	}
	if v, ok := fig6.Degradation("exclusive", "Draining", 4); ok {
		b.ReportMetric(v, "x-stp-deg-drain")
	}
}

// BenchmarkFig7 regenerates the DSS equal-sharing figure for 4-process
// workloads and reports NTT and fairness improvements.
func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	var fig7 *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		f7, _, err := experiments.RunDSS(benchOpts(4))
		if err != nil {
			b.Fatal(err)
		}
		fig7 = f7
	}
	if v, ok := fig7.NTTImprovement("AVERAGE", experiments.ConfDSSCS, 4); ok {
		b.ReportMetric(v, "x-ntt-cs")
	}
	if v, ok := fig7.FairnessImprovement(experiments.ConfDSSCS, 4); ok {
		b.ReportMetric(v, "x-fairness-cs")
	}
	if v, ok := fig7.STPDegradation(experiments.ConfDSSCS, 4); ok {
		b.ReportMetric(v, "x-stp-deg-cs")
	}
}

// BenchmarkFig8 regenerates the per-workload ANTT curves for 4-process
// workloads and reports the median ANTT per configuration.
func BenchmarkFig8(b *testing.B) {
	b.ReportAllocs()
	var fig8 *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		_, f8, err := experiments.RunDSS(benchOpts(4))
		if err != nil {
			b.Fatal(err)
		}
		fig8 = f8
	}
	median := func(conf string) float64 {
		s := fig8.Sorted(4, conf)
		return s[len(s)/2]
	}
	b.ReportMetric(median(experiments.ConfFCFS), "antt-fcfs")
	b.ReportMetric(median(experiments.ConfDSSCS), "antt-dss-cs")
	b.ReportMetric(median(experiments.ConfDSSDrain), "antt-dss-drain")
}

// --- concurrent experiment runner ----------------------------------------

// benchWorkerCounts are the worker counts the parallel-runner benchmarks
// sweep: sequential, 2, 4, and every CPU (deduplicated).
func benchWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkGridWorkers regenerates the full evaluation grid behind Figures
// 5–8 (every workload size, priority and DSS configurations) at reduced
// scale under increasing worker counts. Results are identical at every
// count; only the wall-clock changes, so comparing the workers=1 and
// workers=N lines of `go test -bench GridWorkers` shows the runner's
// speedup directly.
func BenchmarkGridWorkers(b *testing.B) {
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				o := benchOpts(2, 4, 6, 8)
				o.Workers = workers
				if _, _, err := experiments.RunPriority(o); err != nil {
					b.Fatal(err)
				}
				if _, _, err := experiments.RunDSS(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunManyWorkers measures the facade batch path: one DSS workload
// replicated across derived seeds, simulated on 1..N workers.
func BenchmarkRunManyWorkers(b *testing.B) {
	var apps []*App
	for _, n := range []string{"spmv", "histo", "sgemm", "mri-q"} {
		a, err := AppByName(n)
		if err != nil {
			b.Fatal(err)
		}
		apps = append(apps, a.Scale(16))
	}
	ws := make([]Workload, 16)
	for i := range ws {
		ws[i] = Workload{Apps: apps, HighPriority: -1}
	}
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("parallel=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			o := Options{Policy: PolicyDSS, MinRuns: 2, Parallel: workers}
			for i := 0; i < b.N; i++ {
				if _, err := RunMany(context.Background(), ws, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- microbenchmarks of the substrate ------------------------------------

// BenchmarkEventEngine measures raw discrete-event throughput.
func BenchmarkEventEngine(b *testing.B) {
	b.ReportAllocs()
	eng := sim.NewEngine()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			eng.After(1, tick)
		}
	}
	b.ResetTimer()
	eng.After(1, tick)
	if err := eng.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkIssueCompleteTB isolates the per-thread-block hot path — issue,
// completion event, refill — on a bare framework with no process replay, DMA
// or preemption in the loop. It is the microbenchmark behind the
// allocation-free scheduling core: each iteration pushes one kernel through
// the machine, so allocs/op tracks the whole issue/complete cycle.
func BenchmarkIssueCompleteTB(b *testing.B) {
	eng := sim.NewEngine()
	fw, err := core.New(eng, gpu.DefaultConfig(), policy.NewFCFS(), preempt.Drain{},
		core.WithJitter(0.3), core.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	tbl := gpu.NewContextTable(4)
	ctx, err := tbl.Create("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	spec := &trace.KernelSpec{
		Name:         "micro",
		NumTBs:       2048,
		TBTime:       sim.Microseconds(2),
		RegsPerTB:    8192,
		ThreadsPerTB: 128,
		Launches:     1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	tbs := 0
	for i := 0; i < b.N; i++ {
		if err := fw.Submit(&core.LaunchCmd{Ctx: ctx, Spec: spec}); err != nil {
			b.Fatal(err)
		}
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
		tbs += spec.NumTBs
	}
	if fw.Stats().TBsCompleted != tbs {
		b.Fatalf("completed %d TBs, want %d", fw.Stats().TBsCompleted, tbs)
	}
	b.ReportMetric(float64(tbs)/b.Elapsed().Seconds(), "TBs/s")
}

// BenchmarkOccupancy measures the occupancy calculator over Table 1.
func BenchmarkOccupancy(b *testing.B) {
	b.ReportAllocs()
	cfg := gpu.DefaultConfig()
	suite := parboil.Suite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, app := range suite {
			for j := range app.Kernels {
				if _, err := cfg.Occupancy(&app.Kernels[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// benchWorkload runs one multiprogrammed simulation per iteration and
// reports simulated thread blocks per wall second.
func benchWorkload(b *testing.B, pol func(n int) core.Policy, mech func() core.Mechanism, names ...string) {
	var apps []*trace.App
	for _, n := range names {
		a, err := parboil.App(n)
		if err != nil {
			b.Fatal(err)
		}
		apps = append(apps, a.Scale(16))
	}
	cfg := system.DefaultConfig()
	cfg.Seed = 1
	rc := workload.RunConfig{Sys: cfg, Policy: pol, Mechanism: mech, MinRuns: 2}
	spec := workload.Spec{Name: "bench", Apps: apps, HighPriority: -1, Seed: 1}
	totalTBs := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := workload.Run(spec, rc)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Completed {
			b.Fatal("incomplete")
		}
		totalTBs += res.Stats.TBsCompleted
	}
	b.ReportMetric(float64(totalTBs)/b.Elapsed().Seconds(), "TBs/s")
}

// BenchmarkWorkloadFCFS4 measures simulator throughput under FCFS.
func BenchmarkWorkloadFCFS4(b *testing.B) {
	benchWorkload(b,
		func(n int) core.Policy { return policy.NewFCFS() }, nil,
		"spmv", "histo", "sgemm", "mri-q")
}

// BenchmarkWorkloadDSS4CS measures simulator throughput under DSS with
// context switching (preemption-heavy).
func BenchmarkWorkloadDSS4CS(b *testing.B) {
	benchWorkload(b,
		func(n int) core.Policy { return policy.NewDSS(n) },
		func() core.Mechanism { return preempt.ContextSwitch{} },
		"spmv", "histo", "sgemm", "mri-q")
}

// BenchmarkWorkloadDSS8Drain measures an 8-process DSS/draining workload.
func BenchmarkWorkloadDSS8Drain(b *testing.B) {
	benchWorkload(b,
		func(n int) core.Policy { return policy.NewDSS(n) },
		func() core.Mechanism { return preempt.Drain{} },
		"spmv", "histo", "sgemm", "mri-q", "cutcp", "tpacf", "sad", "lbm")
}

// BenchmarkIsolatedBaselines measures the isolated-run path.
func BenchmarkIsolatedBaselines(b *testing.B) {
	b.ReportAllocs()
	app, err := parboil.App("histo")
	if err != nil {
		b.Fatal(err)
	}
	app = app.Scale(16)
	cfg := system.DefaultConfig()
	cfg.Seed = 1
	rc := workload.RunConfig{Sys: cfg, MinRuns: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Isolated(app, rc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunOpen measures the single-node open-system hot path end to
// end through the public facade: stream synthesis, per-arrival admission
// (context + process), PPQ scheduling with adaptive preemption, streaming
// SLO accounting, and retirement. It is gated by the benchcheck CI job via
// bench_baseline.json, so regressions on the arrivals path fail CI.
func BenchmarkRunOpen(b *testing.B) {
	b.ReportAllocs()
	spmv, err := AppByName("spmv")
	if err != nil {
		b.Fatal(err)
	}
	lbm, err := AppByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	spec := &ArrivalSpec{
		Process: ArrivalPoisson,
		Rate:    30000,
		Horizon: 4 * time.Millisecond,
		Classes: []ArrivalClass{
			{Name: "rt", Priority: 1, Weight: 1, Deadline: 250 * time.Microsecond, Apps: []*App{spmv.Scale(96)}},
			{Name: "batch", Priority: 0, Weight: 3, Apps: []*App{lbm.Scale(96)}},
		},
	}
	opts := Options{Policy: PolicyPPQ, Mechanism: MechanismAdaptive, Seed: 7, Arrivals: spec}
	b.ResetTimer()
	var last *OpenResult
	for i := 0; i < b.N; i++ {
		res, err := RunOpen(opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last.Completed == 0 {
		b.Fatal("benchmark stream completed nothing")
	}
	b.ReportMetric(float64(last.Admitted), "requests")
}

// benchClusterOpts builds the cluster-scale benchmark configuration: a
// million-arrival Poisson stream dispatched round-robin across 64 GPUs
// under PPQ+adaptive. The apps are scaled to minimal thread-block counts so
// the run exercises the cluster machinery (dispatch, admission, the
// window/lockstep executors, merge) rather than intra-GPU simulation. The
// stream is synthesized once and replayed as a trace, so every sub-benchmark
// iteration measures simulation only.
func benchClusterOpts(b *testing.B) Options {
	b.Helper()
	spmv, err := AppByName("spmv")
	if err != nil {
		b.Fatal(err)
	}
	lbm, err := AppByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	spec := &ArrivalSpec{
		Process:     ArrivalPoisson,
		Rate:        2e6,
		Horizon:     2 * time.Second,
		MaxArrivals: 1_000_000,
		Classes: []ArrivalClass{
			{Name: "rt", Priority: 1, Weight: 1, Deadline: 250 * time.Microsecond, Apps: []*App{spmv.Scale(1 << 20)}},
			{Name: "batch", Priority: 0, Weight: 3, Apps: []*App{lbm.Scale(1 << 20)}},
		},
	}
	opts := Options{
		Policy:    PolicyPPQ,
		Mechanism: MechanismAdaptive,
		Seed:      7,
		Nodes:     64,
		Dispatch:  DispatchRoundRobin,
		Arrivals:  spec,
	}
	tr, err := spec.Synthesize(opts)
	if err != nil {
		b.Fatal(err)
	}
	opts.Arrivals = &ArrivalSpec{Trace: tr}
	return opts
}

// BenchmarkRunCluster measures the cluster hot path end to end through the
// public facade on a million-arrival, 64-GPU fleet. The unprefixed lines
// dispatch round-robin (load-oblivious, so the windowed executor pre-shards
// the whole stream): lockstep is the event-by-event reference; window=N runs
// the parallel-in-time executor on N workers. The jsq- lines dispatch
// join-shortest-queue, where every placement reads fleet load, so the
// windowed executor leans on the PCIe latency-floor lookahead instead of
// pre-sharding — the comparison that prices serial dispatch decisions.
// Results are byte-identical within a dispatch policy — only the wall-clock
// changes. The lockstep, window=8, jsq-lockstep and jsq-window=8 lines are
// gated by the benchcheck CI job via bench_baseline.json.
func BenchmarkRunCluster(b *testing.B) {
	opts := benchClusterOpts(b)
	for _, cfg := range []struct {
		name     string
		dispatch DispatchKind
		workers  int
	}{
		{"lockstep", DispatchRoundRobin, 0},
		{"window=1", DispatchRoundRobin, 1},
		{"window=8", DispatchRoundRobin, 8},
		{"jsq-lockstep", DispatchJSQ, 0},
		{"jsq-window=8", DispatchJSQ, 8},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			opts.Dispatch = cfg.dispatch
			opts.ParWindow = cfg.workers
			b.ResetTimer()
			var last *ClusterResult
			for i := 0; i < b.N; i++ {
				res, err := RunCluster(opts)
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			if last.Completed != opts.Arrivals.Trace.Len() {
				b.Fatalf("completed %d of %d arrivals", last.Completed, opts.Arrivals.Trace.Len())
			}
			b.ReportMetric(float64(last.Completed)/b.Elapsed().Seconds()*float64(b.N), "requests/s")
		})
	}
}
