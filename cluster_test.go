package repro

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestRunCluster(t *testing.T) {
	o := Options{
		Policy:    PolicyPPQ,
		Mechanism: MechanismAdaptive,
		Seed:      3,
		Arrivals:  openSpec(t),
		Nodes:     3,
		Dispatch:  DispatchJSQ,
	}
	res, err := RunCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Admitted == 0 {
		t.Fatal("no requests admitted")
	}
	if res.Admitted != res.Completed+res.InFlight {
		t.Errorf("conservation violated: %d != %d + %d", res.Admitted, res.Completed, res.InFlight)
	}
	if res.Dispatch != DispatchJSQ {
		t.Errorf("dispatch = %q, want jsq", res.Dispatch)
	}
	if len(res.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(res.Nodes))
	}
	var adm, done int
	for _, n := range res.Nodes {
		adm += n.Admitted
		done += n.Completed
		if n.Admitted != n.Completed+n.InFlight {
			t.Errorf("node %d conservation violated", n.Node)
		}
	}
	if adm != res.Admitted || done != res.Completed {
		t.Errorf("node sums (%d/%d) disagree with rollup (%d/%d)", adm, done, res.Admitted, res.Completed)
	}
	if len(res.Classes) != 2 || res.Classes[0].Name != "rt" || res.Classes[1].Name != "batch" {
		t.Fatalf("classes = %+v", res.Classes)
	}

	// Deterministic: an identical run is deeply equal.
	again, err := RunCluster(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, again) {
		t.Error("identical cluster runs diverged")
	}
}

// TestRunClusterSingleNodeDefault pins that Nodes 0 means one machine and
// every dispatch policy degenerates gracefully there.
func TestRunClusterSingleNodeDefault(t *testing.T) {
	for _, d := range DispatchKinds() {
		o := Options{Policy: PolicyPPQ, Seed: 3, Arrivals: openSpec(t), Dispatch: d}
		res, err := RunCluster(o)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		if len(res.Nodes) != 1 || res.Nodes[0].Admitted != res.Admitted {
			t.Errorf("%s: single-node default did not route everything to node 0", d)
		}
	}
}

// TestRunClusterExecutor pins the executor surfacing: ParWindow selects the
// parallel-window loop, a zero or negative value keeps the lockstep
// reference, Resilience forces the documented lockstep fallback — and the
// reported executor is the only field that may differ between the two.
func TestRunClusterExecutor(t *testing.T) {
	base := Options{
		Policy:    PolicyPPQ,
		Mechanism: MechanismAdaptive,
		Seed:      3,
		Arrivals:  openSpec(t),
		Nodes:     3,
		Dispatch:  DispatchJSQ,
	}
	run := func(mut func(*Options)) *ClusterResult {
		t.Helper()
		o := base
		if mut != nil {
			mut(&o)
		}
		res, err := RunCluster(o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	lock := run(nil)
	if lock.Executor != ExecutorLockstep {
		t.Fatalf("default run reports executor %q, want %q", lock.Executor, ExecutorLockstep)
	}
	par := run(func(o *Options) { o.ParWindow = 4 })
	if par.Executor != ExecutorParallelWindow {
		t.Fatalf("ParWindow=4 run reports executor %q, want %q", par.Executor, ExecutorParallelWindow)
	}
	par.Executor = lock.Executor
	if !reflect.DeepEqual(lock, par) {
		t.Error("parallel-window run differs from lockstep beyond the Executor field")
	}
	neg := run(func(o *Options) { o.ParWindow = -1 })
	if neg.Executor != ExecutorLockstep {
		t.Errorf("negative ParWindow reports executor %q, want lockstep", neg.Executor)
	}
	fallback := run(func(o *Options) {
		o.ParWindow = 4
		o.Resilience = &ResilienceSpec{Timeout: time.Millisecond}
	})
	if fallback.Executor != ExecutorLockstep {
		t.Errorf("ParWindow with Resilience reports executor %q, want the lockstep fallback", fallback.Executor)
	}
}

func TestRunClusterValidation(t *testing.T) {
	if _, err := RunCluster(Options{Policy: PolicyPPQ}); err == nil {
		t.Error("missing Arrivals accepted")
	}
	o := Options{Policy: PolicyPPQ, Arrivals: openSpec(t), Dispatch: "no-such-policy", Nodes: 2}
	if _, err := RunCluster(o); err == nil {
		t.Error("unknown dispatch policy accepted")
	}
	o = Options{Policy: PolicyPPQ, Arrivals: openSpec(t), Nodes: 100000}
	if _, err := RunCluster(o); err == nil {
		t.Error("absurd node count accepted")
	}
	// A positive ContextCapacity is enforced per node: a single slot cannot
	// hold this stream's overlapping requests.
	o = Options{Policy: PolicyPPQ, Arrivals: openSpec(t), Nodes: 1, ContextCapacity: 1}
	if _, err := RunCluster(o); err == nil {
		t.Error("over-admission beyond ContextCapacity accepted")
	}
}

func TestReadClusterTopology(t *testing.T) {
	o, err := ReadClusterTopology(strings.NewReader(`{"nodes": 4, "dispatch": "least-loaded"}`), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if o.Nodes != 4 || o.Dispatch != DispatchLeastLoaded || o.Seed != 9 {
		t.Errorf("topology not applied: %+v", o)
	}
	if o.DispatchSeed != 0 || o.ContextCapacity != 0 {
		t.Errorf("absent topology fields overwrote options: %+v", o)
	}
	o, err = ReadClusterTopology(strings.NewReader(`{"nodes": 2}`), Options{Dispatch: DispatchJSQ})
	if err != nil {
		t.Fatal(err)
	}
	if o.Dispatch != DispatchJSQ {
		t.Errorf("topology without a dispatch field overwrote the preset policy: %+v", o)
	}
	o, err = ReadClusterTopology(
		strings.NewReader(`{"nodes": 2, "dispatch": "p2c", "seed": 42, "context_capacity": 16}`), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if o.DispatchSeed != 42 || o.ContextCapacity != 16 || o.Seed != 9 {
		t.Errorf("topology seed/capacity not applied: %+v", o)
	}
	if _, err := ReadClusterTopology(strings.NewReader(`{"nodes": 0}`), Options{}); err == nil {
		t.Error("invalid topology accepted")
	}
	if _, err := ReadClusterTopology(strings.NewReader(`garbage`), Options{}); err == nil {
		t.Error("malformed JSON accepted")
	}
}
