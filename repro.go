// Package repro is a Go reproduction of "Enabling Preemptive
// Multiprogramming on GPUs" (Tanasic et al., ISCA 2014).
//
// It provides a trace-driven simulator of a GK110 (Kepler)-class GPU
// extended with the paper's hardware multiprogramming support: four per-SM
// preemption mechanisms (context switch, draining, flush for idempotent
// kernels, and an adaptive cost-model hybrid), concurrent execution
// of kernels from different processes, a hardware scheduling framework
// (command buffers, active queue, KSRT, SMST, PTBQs) and scheduling policies
// including the paper's Dynamic Spatial Sharing (DSS).
//
// This package is the public facade: it exposes the benchmark suite, the
// machine and scheduler configuration, and a Run function that simulates a
// multiprogrammed workload and reports the paper's metrics (NTT, ANTT, STP,
// fairness). The building blocks live under internal/ (see DESIGN.md).
//
// Quick start:
//
//	suite := repro.Suite()
//	res, err := repro.Run(
//		repro.Workload{Apps: []*repro.App{suite[3], suite[6]}},
//		repro.Options{Policy: repro.PolicyDSS, Mechanism: repro.MechanismContextSwitch},
//	)
package repro

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parboil"
	"repro/internal/pcie"
	"repro/internal/policy"
	"repro/internal/preempt"
	"repro/internal/sim"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workload"
)

// PolicyKind selects a scheduling policy.
type PolicyKind string

// Available scheduling policies.
const (
	// PolicyFCFS models current GPUs: first-come first-serve, one context
	// owning the execution engine at a time.
	PolicyFCFS PolicyKind = "fcfs"
	// PolicyNPQ is non-preemptive priority queues.
	PolicyNPQ PolicyKind = "npq"
	// PolicyPPQ is preemptive priority queues with exclusive access for
	// the highest priority level.
	PolicyPPQ PolicyKind = "ppq"
	// PolicyPPQShared is preemptive priority queues granting leftover SMs
	// to lower-priority kernels.
	PolicyPPQShared PolicyKind = "ppq-shared"
	// PolicyDSS is the paper's Dynamic Spatial Sharing policy.
	PolicyDSS PolicyKind = "dss"
	// PolicyTimeSlice is preemptive round-robin time multiplexing.
	PolicyTimeSlice PolicyKind = "timeslice"
	// PolicyStatic is static spatial multitasking: fixed disjoint SM sets
	// per process (Adriaens et al., contrasted with DSS in the paper's §5).
	PolicyStatic PolicyKind = "static"
)

// MechanismKind selects a preemption mechanism.
type MechanismKind string

// Available preemption mechanisms.
const (
	// MechanismContextSwitch saves and restores thread-block contexts.
	MechanismContextSwitch MechanismKind = "context-switch"
	// MechanismDrain stops issue and waits for resident thread blocks.
	MechanismDrain MechanismKind = "drain"
	// MechanismFlush cancels resident thread blocks of idempotent kernels
	// and re-runs them from scratch (no save/restore traffic, wasted work
	// instead); non-idempotent kernels fall back to a context switch.
	MechanismFlush MechanismKind = "flush"
	// MechanismAdaptive picks drain, context switch or flush per preemption
	// with an online cost model fed by a per-kernel thread-block runtime
	// estimator.
	MechanismAdaptive MechanismKind = "adaptive"
	// MechanismNone forbids preemption (only valid with non-preemptive
	// policies).
	MechanismNone MechanismKind = "none"
)

// App is an application trace.
type App struct {
	t *trace.App
}

// Suite returns the ten Parboil benchmark applications of the paper's
// evaluation (Table 1).
func Suite() []*App {
	apps := parboil.Suite()
	out := make([]*App, len(apps))
	for i, a := range apps {
		out[i] = &App{t: a}
	}
	return out
}

// AppByName returns one Parboil benchmark by name (see Names).
func AppByName(name string) (*App, error) {
	a, err := parboil.App(name)
	if err != nil {
		return nil, err
	}
	return &App{t: a}, nil
}

// Names lists the benchmark names.
func Names() []string { return parboil.Names() }

// Name returns the application name.
func (a *App) Name() string { return a.t.Name }

// KernelClass returns the Table 1 "Class 1" group (by kernel length).
func (a *App) KernelClass() string { return a.t.Class1.String() }

// AppClass returns the Table 1 "Class 2" group (by application length).
func (a *App) AppClass() string { return a.t.Class2.String() }

// Scale returns a copy of the application scaled down by factor (thread
// blocks, launches, transfers and CPU time all shrink; per-thread-block
// statistics are preserved). Useful for fast experimentation.
func (a *App) Scale(factor int) *App { return &App{t: a.t.Scale(factor)} }

// Trace exposes the underlying trace (read-only by convention).
func (a *App) Trace() *trace.App { return a.t }

// Workload is a set of applications to co-schedule.
type Workload struct {
	// Apps are the co-scheduled applications.
	Apps []*App
	// HighPriority is the index of the prioritized application (-1 or out
	// of range = none).
	HighPriority int
	// Seed perturbs thread-block timing for this workload. Zero means
	// unset: Run falls back to Options.Seed, while RunMany derives a
	// distinct deterministic seed from Options.Seed and the workload's
	// index in the batch (so unseeded replicas differ).
	Seed uint64
}

// Options configures a simulation.
type Options struct {
	// Policy selects the scheduler. Default PolicyFCFS.
	Policy PolicyKind
	// Mechanism selects the preemption mechanism. Default
	// MechanismContextSwitch for preemptive policies.
	Mechanism MechanismKind
	// MinRuns is how many completed runs each application needs (replay
	// methodology, §4.1). Default 3.
	MinRuns int
	// Seed drives all randomness. Default 1.
	Seed uint64
	// Jitter is the thread-block time variability fraction; negative
	// disables jitter. Default 0.30.
	Jitter float64
	// RecordTimeline captures per-SM activity intervals in the result.
	RecordTimeline bool
	// PriorityDMA makes the data-transfer engine serve high-priority
	// transfers first (as in the paper's §4.2 experiments).
	PriorityDMA bool
	// TimeSliceQuantum sets the PolicyTimeSlice quantum. Default 500us.
	TimeSliceQuantum time.Duration
	// MaxSimTime bounds virtual time (guard against starvation).
	// Default 120 simulated seconds.
	MaxSimTime time.Duration
	// MPS runs all applications in one shared GPU context, as NVIDIA's
	// Multi-Process Service does (§2.1): cross-process concurrency under
	// FCFS, but no memory isolation and no per-process scheduling.
	MPS bool
	// Arrivals describes an open-system workload (dynamic request arrivals
	// instead of a fixed co-scheduled set); it is consumed by RunOpen and
	// RunCluster and ignored by Run/RunMany. See ArrivalSpec.
	Arrivals *ArrivalSpec
	// Nodes is the number of simulated GPUs for RunCluster (0 or 1 = one
	// machine). Run/RunMany/RunOpen ignore it.
	Nodes int
	// NodeTypes optionally makes RunCluster's starting fleet heterogeneous:
	// the types expand in order, each overriding pieces of the base machine.
	// When set, Nodes must be zero or equal the types' total count.
	NodeTypes []ClusterNodeType
	// Dispatch selects how RunCluster places each arrival on a node.
	// Default DispatchRoundRobin.
	Dispatch DispatchKind
	// Autoscale, when non-nil, lets RunCluster resize the fleet from rolling
	// SLO feedback instead of keeping it fixed.
	Autoscale *AutoscalePolicy
	// Faults, when non-nil, makes RunCluster's fleet misbehave
	// deterministically: seeded node kills and restarts, plus straggler
	// incarnations.
	Faults *FaultPlan
	// Resilience, when non-nil, arms RunCluster's request-lifecycle manager:
	// per-attempt deadlines, budgeted retries with backoff, hedged requests,
	// per-node circuit breakers and admission-control load shedding. A
	// zero-valued spec arms nothing and is bit-for-bit inert.
	Resilience *ResilienceSpec
	// DispatchSeed drives randomized dispatch policies (DispatchPowerOfTwo)
	// separately from the machine's jitter seed; 0 falls back to Seed.
	DispatchSeed uint64
	// HBM overrides each simulated GPU's device-memory capacity in bytes for
	// RunCluster (0 = the GPU spec's memory size; NodeTypes' HBMBytes
	// override it per type). Each admitted request charges its application's
	// working set against the node's capacity; when HBM is oversubscribed
	// admission blocks FIFO — or swaps, with Swap set.
	HBM int64
	// Swap switches RunCluster's oversubscribed GPUs from FIFO admission
	// blocking to host swap: contexts that do not fit spill to the host over
	// the GPU's PCIe link and are proactively swapped back in as memory
	// frees.
	Swap bool
	// ParWindow switches RunCluster from event-by-event lockstep to
	// parallel-in-time window execution: per-GPU engines run independently
	// inside conservative time windows on this many workers, with a
	// deterministic merge at every window boundary. Results are
	// byte-identical to the lockstep reference at any value (0 = lockstep);
	// a run with Resilience armed always uses lockstep.
	ParWindow int
	// WarmStart, when positive, has RunCluster first play a warmup stream of
	// this duration through a throwaway fleet and carry the dispatcher's
	// learned state (service-time estimates) into the measured run. The
	// measured fleet itself starts cold — only dispatcher learning is kept —
	// so load sweeps measure steady-state placement instead of the
	// predictor's cold-start transient.
	WarmStart time.Duration
	// ContextCapacity overrides each simulated GPU's context-table capacity
	// (0 = the arrival count for open-system and cluster runs, so admission
	// never fails; gpu.DefaultContextCapacity for closed workloads). A
	// positive value makes over-admission a simulation error.
	ContextCapacity int
	// Parallel bounds the number of concurrently simulated workloads in
	// RunMany (0 = runtime.NumCPU(), 1 = sequential). Run ignores it.
	Parallel int
	// OnProgress, when non-nil, is called by RunMany after each completed
	// workload with (completed, total). Calls are serialized.
	OnProgress func(completed, total int)
}

// AppMetrics reports one application's outcome.
type AppMetrics struct {
	Name string
	// Runs is the number of completed runs.
	Runs int
	// Turnaround is the mean turnaround in the multiprogrammed workload.
	Turnaround time.Duration
	// Isolated is the mean turnaround when run alone.
	Isolated time.Duration
	// NTT is the normalized turnaround time (Turnaround / Isolated).
	NTT float64
	// Starved reports an application that never completed a run.
	Starved bool
	// HighPriority marks the prioritized application.
	HighPriority bool
}

// TimelineInterval is one contiguous SM activity (only present when
// Options.RecordTimeline is set).
type TimelineInterval struct {
	SM         int
	Kind       string // "setup", "run", "drain", "save"
	Start, End time.Duration
	Kernel     string
	Ctx        int
}

// Result reports a simulated workload.
type Result struct {
	// ANTT, STP and Fairness are the Eyerman & Eeckhout multiprogram
	// metrics of §4.1.
	ANTT, STP, Fairness float64
	// Apps lists per-application outcomes in workload order.
	Apps []AppMetrics
	// EndTime is the virtual time the simulation stopped.
	EndTime time.Duration
	// Completed reports whether every application reached MinRuns.
	Completed bool
	// Preemptions counts SM reservations; ContextSavedBytes counts context
	// traffic moved by the context-switch mechanism; WastedWork is the
	// execution time discarded (and later re-executed) by the flush
	// mechanism.
	Preemptions       int
	ContextSavedBytes int64
	WastedWork        time.Duration
	// Utilization is the SM busy fraction.
	Utilization float64
	// Timeline holds SM activity intervals when recording was requested.
	Timeline []TimelineInterval
}

func (o Options) fill() Options {
	if o.Policy == "" {
		o.Policy = PolicyFCFS
	}
	if o.Mechanism == "" {
		switch o.Policy {
		case PolicyFCFS, PolicyNPQ:
			o.Mechanism = MechanismNone
		default:
			o.Mechanism = MechanismContextSwitch
		}
	}
	if o.MinRuns <= 0 {
		o.MinRuns = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Jitter == 0 {
		o.Jitter = 0.30
	}
	if o.Jitter < 0 {
		o.Jitter = 0
	}
	if o.TimeSliceQuantum <= 0 {
		o.TimeSliceQuantum = 500 * time.Microsecond
	}
	return o
}

func (o Options) policyFactory() (func(n int) core.Policy, error) {
	switch o.Policy {
	case PolicyFCFS:
		return func(n int) core.Policy { return policy.NewFCFS() }, nil
	case PolicyNPQ:
		return func(n int) core.Policy { return policy.NewNPQ() }, nil
	case PolicyPPQ:
		return func(n int) core.Policy { return policy.NewPPQ(false) }, nil
	case PolicyPPQShared:
		return func(n int) core.Policy { return policy.NewPPQ(true) }, nil
	case PolicyDSS:
		return func(n int) core.Policy { return policy.NewDSS(n) }, nil
	case PolicyTimeSlice:
		q := sim.Time(o.TimeSliceQuantum.Nanoseconds())
		return func(n int) core.Policy { return policy.NewTimeSlice(q) }, nil
	case PolicyStatic:
		return func(n int) core.Policy { return policy.NewStatic(n) }, nil
	default:
		return nil, fmt.Errorf("repro: unknown policy %q", o.Policy)
	}
}

func (o Options) mechanismFactory() (func() core.Mechanism, error) {
	switch o.Mechanism {
	case MechanismContextSwitch:
		return func() core.Mechanism { return preempt.ContextSwitch{} }, nil
	case MechanismDrain:
		return func() core.Mechanism { return preempt.Drain{} }, nil
	case MechanismFlush:
		return func() core.Mechanism { return preempt.Flush{} }, nil
	case MechanismAdaptive:
		return func() core.Mechanism { return preempt.NewAdaptive() }, nil
	case MechanismNone:
		return nil, nil
	default:
		return nil, fmt.Errorf("repro: unknown mechanism %q", o.Mechanism)
	}
}

func (o Options) runConfig() (workload.RunConfig, error) {
	sys := system.DefaultConfig()
	sys.Seed = o.Seed
	sys.Jitter = o.Jitter
	sys.RecordTimeline = o.RecordTimeline
	sys.ContextCapacity = o.ContextCapacity
	if o.PriorityDMA {
		sys.DMAPolicy = pcie.PriorityFCFS{}
	}
	pol, err := o.policyFactory()
	if err != nil {
		return workload.RunConfig{}, err
	}
	mech, err := o.mechanismFactory()
	if err != nil {
		return workload.RunConfig{}, err
	}
	return workload.RunConfig{
		Sys:        sys,
		Policy:     pol,
		Mechanism:  mech,
		MinRuns:    o.MinRuns,
		MaxSimTime: sim.Time(o.MaxSimTime.Nanoseconds()),
		MPS:        o.MPS,
	}, nil
}

// isolatedConfig is the run configuration for isolated baselines: the same
// machine under FCFS with no contention. o must already be filled.
func (o Options) isolatedConfig() (workload.RunConfig, error) {
	return Options{Policy: PolicyFCFS, MinRuns: o.MinRuns, Seed: o.Seed, Jitter: o.Jitter}.fill().runConfig()
}

// Run simulates a multiprogrammed workload and reports the paper's metrics.
func Run(w Workload, o Options) (*Result, error) {
	return run(w, o.fill(), nil)
}

// run is the shared implementation behind Run and RunMany. iso, when
// non-nil, supplies isolated baseline turnarounds (RunMany passes a
// memoizer so replicas of the same applications share baselines); nil
// computes each baseline directly. o must already be filled.
func run(w Workload, o Options, iso func(*trace.App) (sim.Time, error)) (*Result, error) {
	if len(w.Apps) == 0 {
		return nil, fmt.Errorf("repro: empty workload")
	}
	rc, err := o.runConfig()
	if err != nil {
		return nil, err
	}
	apps := make([]*trace.App, len(w.Apps))
	for i, a := range w.Apps {
		apps[i] = a.t
	}
	hp := w.HighPriority
	if hp < 0 || hp >= len(apps) {
		hp = -1
	}
	spec := workload.Spec{Name: "workload", Apps: apps, HighPriority: hp, Seed: w.Seed}
	res, err := workload.Run(spec, rc)
	if err != nil {
		return nil, err
	}

	// Isolated baselines for the metrics.
	if iso == nil {
		isoRC, err := o.isolatedConfig()
		if err != nil {
			return nil, err
		}
		iso = func(a *trace.App) (sim.Time, error) { return workload.Isolated(a, isoRC) }
	}
	out := &Result{
		EndTime:           time.Duration(res.EndTime),
		Completed:         res.Completed,
		Preemptions:       res.Stats.Preemptions,
		ContextSavedBytes: res.Stats.ContextSavedBytes,
		WastedWork:        time.Duration(res.Stats.WastedWork),
		Utilization:       res.Utilization,
	}
	perfs := make([]metrics.AppPerf, len(res.Apps))
	for i, ar := range res.Apps {
		isoT, err := iso(apps[i])
		if err != nil {
			return nil, err
		}
		perfs[i] = metrics.AppPerf{Name: ar.Name, Isolated: isoT, Shared: ar.MeanTurnaround}
		out.Apps = append(out.Apps, AppMetrics{
			Name:         ar.Name,
			Runs:         ar.Runs,
			Turnaround:   time.Duration(ar.MeanTurnaround),
			Isolated:     time.Duration(isoT),
			NTT:          perfs[i].NTT(),
			Starved:      ar.Starved,
			HighPriority: ar.HighPriority,
		})
	}
	sum, err := metrics.Summarize(perfs)
	if err != nil {
		return nil, err
	}
	out.ANTT, out.STP, out.Fairness = sum.ANTT, sum.STP, sum.Fairness

	if res.Timeline != nil {
		for _, iv := range res.Timeline.Intervals {
			out.Timeline = append(out.Timeline, TimelineInterval{
				SM:     iv.SM,
				Kind:   iv.Kind.String(),
				Start:  time.Duration(iv.Start),
				End:    time.Duration(iv.End),
				Kernel: iv.Kernel,
				Ctx:    iv.CtxID,
			})
		}
	}
	return out, nil
}

// Isolated returns the application's mean turnaround when run alone.
func Isolated(a *App, o Options) (time.Duration, error) {
	rc, err := o.fill().isolatedConfig()
	if err != nil {
		return 0, err
	}
	t, err := workload.Isolated(a.t, rc)
	return time.Duration(t), err
}
