// Quickstart: simulate a 2-process multiprogrammed workload under the
// baseline FCFS scheduler of current GPUs and under the paper's Dynamic
// Spatial Sharing (DSS) policy with the context-switch preemption mechanism,
// and compare the multiprogram metrics.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	scale := flag.Int("scale", 1, "benchmark scale factor (1 = paper-faithful, larger = faster)")
	flag.Parse()
	suite := repro.Suite()

	// Pick a short app (spmv) and a long one (lbm): the pairing where
	// FCFS hurts the short app the most.
	var spmv, lbm *repro.App
	for _, a := range suite {
		switch a.Name() {
		case "spmv":
			spmv = a.Scale(*scale)
		case "lbm":
			lbm = a.Scale(*scale)
		}
	}
	w := repro.Workload{Apps: []*repro.App{spmv, lbm}, HighPriority: -1}

	for _, cfg := range []struct {
		label string
		opts  repro.Options
	}{
		{"FCFS (current GPUs)", repro.Options{Policy: repro.PolicyFCFS}},
		{"DSS + context switch", repro.Options{Policy: repro.PolicyDSS, Mechanism: repro.MechanismContextSwitch}},
		{"DSS + draining", repro.Options{Policy: repro.PolicyDSS, Mechanism: repro.MechanismDrain}},
	} {
		res, err := repro.Run(w, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", cfg.label)
		for _, a := range res.Apps {
			fmt.Printf("  %-8s runs=%d turnaround=%v (isolated %v)  NTT=%.2f\n",
				a.Name, a.Runs, a.Turnaround, a.Isolated, a.NTT)
		}
		fmt.Printf("  ANTT=%.2f  STP=%.2f  fairness=%.2f  preemptions=%d\n\n",
			res.ANTT, res.STP, res.Fairness, res.Preemptions)
	}
}
