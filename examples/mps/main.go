// MPS compares the three ways of sharing a GPU that the paper discusses:
//
//   - FCFS with separate contexts (today's GPUs): kernels from different
//     processes serialize, one context owns the execution engine at a time.
//   - NVIDIA MPS (§2.1): a proxy process runs every client in one shared
//     context, recovering cross-process concurrency — but giving up memory
//     isolation and any per-process scheduling policy.
//   - The paper's hardware extensions with DSS: concurrency with isolation
//     intact, plus enforceable per-process resource allocation.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	scale := flag.Int("scale", 4, "benchmark scale factor (larger = faster)")
	flag.Parse()
	byName := map[string]*repro.App{}
	for _, a := range repro.Suite() {
		byName[a.Name()] = a
	}
	apps := []*repro.App{
		byName["spmv"].Scale(*scale),
		byName["mri-q"].Scale(*scale),
		byName["histo"].Scale(*scale),
		byName["sad"].Scale(*scale),
	}
	w := repro.Workload{Apps: apps, HighPriority: -1}

	for _, cfg := range []struct {
		label string
		opts  repro.Options
	}{
		{"FCFS, separate contexts (current GPUs)", repro.Options{Policy: repro.PolicyFCFS}},
		{"MPS: one shared context, no isolation", repro.Options{Policy: repro.PolicyFCFS, MPS: true}},
		{"DSS + context switch (this paper)",
			repro.Options{Policy: repro.PolicyDSS, Mechanism: repro.MechanismContextSwitch}},
	} {
		res, err := repro.Run(w, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", cfg.label)
		fmt.Printf("  ANTT=%.2f  STP=%.2f  fairness=%.2f\n", res.ANTT, res.STP, res.Fairness)
		for _, a := range res.Apps {
			fmt.Printf("  %-8s NTT=%.2f\n", a.Name, a.NTT)
		}
		fmt.Println()
	}
	fmt.Println("MPS recovers concurrency but: clients share one GPU address space")
	fmt.Println("(no isolation) and per-process priorities cannot be enforced.")
	fmt.Println("DSS achieves concurrency with isolation and OS-controllable shares.")
}
