// Opensystem demonstrates the open-system workload engine: instead of a
// fixed pair of applications replaying forever (the paper's closed
// methodology), requests arrive continuously — latency-sensitive "rt"
// inference probes with a completion deadline, mixed with batch requests
// replaying long-thread-block Parboil kernels — and each request admits a
// fresh process that is retired when its run completes.
//
// The walkthrough sweeps the preemption mechanism under preemptive priority
// scheduling and prints each class's percentile latencies and deadline-miss
// rate: draining recovers SMs only as fast as the batch kernels' long thread
// blocks retire, so the rt class blows its deadline under load, while the
// context-switch and adaptive mechanisms evict the victims at a bounded
// cost. It also shows the write/replay cycle: the synthesized stream is
// serialized and re-run byte-identically.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"reflect"
	"time"

	"repro"
)

func main() {
	scale := flag.Int("scale", 48, "benchmark scale factor (larger = faster)")
	rate := flag.Float64("rate", 0, "offered load in requests per second (0 = 1200 x scale, near saturation)")
	flag.Parse()
	if *rate <= 0 {
		*rate = 1200 * float64(*scale)
	}

	// The latency-sensitive request: a small idempotent inference-style
	// kernel, one wave across the chip, built through the public AppBuilder.
	infer, err := repro.NewApp("infer").
		Kernel(repro.KernelConfig{
			Name: "probe", ThreadBlocks: 13, TBTime: 5 * time.Microsecond,
			RegsPerTB: 4096, Idempotent: true,
		}).
		Launch("probe").Sync().
		Build()
	if err != nil {
		log.Fatal(err)
	}
	// The batch mix: long-thread-block Parboil victims — sgemm's 99µs
	// blocks are idempotent (flushable), tpacf's 73µs histogram blocks are
	// not (adaptive must context-switch them).
	sgemm, err := repro.AppByName("sgemm")
	if err != nil {
		log.Fatal(err)
	}
	tpacf, err := repro.AppByName("tpacf")
	if err != nil {
		log.Fatal(err)
	}

	spec := &repro.ArrivalSpec{
		Process: repro.ArrivalPoisson,
		Rate:    *rate,
		Horizon: 5 * time.Millisecond,
		Classes: []repro.ArrivalClass{
			{Name: "rt", Priority: 1, Weight: 1, Deadline: 60 * time.Microsecond,
				Apps: []*repro.App{infer}},
			{Name: "batch", Priority: 0, Weight: 2,
				Apps: []*repro.App{sgemm.Scale(*scale), tpacf.Scale(*scale)}},
		},
	}

	for _, mech := range []repro.MechanismKind{
		repro.MechanismDrain, repro.MechanismContextSwitch, repro.MechanismAdaptive,
	} {
		res, err := repro.RunOpen(repro.Options{
			Policy:    repro.PolicyPPQ,
			Mechanism: mech,
			Seed:      7,
			Arrivals:  spec,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== PPQ with %s ===\n", mech)
		fmt.Printf("  %d requests admitted, %d completed, %d in flight at %v (utilization %.0f%%, %d preemptions)\n",
			res.Admitted, res.Completed, res.InFlight, res.EndTime, res.Utilization*100, res.Preemptions)
		for _, c := range res.Classes {
			fmt.Printf("  %-6s p50=%-10v p95=%-10v p99=%-10v", c.Name, c.LatencyP50, c.LatencyP95, c.LatencyP99)
			if c.Name == "rt" {
				fmt.Printf("  deadline misses: %.0f%%", c.MissRate*100)
			}
			fmt.Println()
		}
		fmt.Printf("  goodput: %.0f SLO-compliant requests/s\n\n", res.Goodput)
	}

	// Reproducible replay: serialize the synthesized stream and re-run it.
	o := repro.Options{Policy: repro.PolicyPPQ, Mechanism: repro.MechanismAdaptive, Seed: 7, Arrivals: spec}
	tr, err := spec.Synthesize(o)
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	jsonBytes := buf.Len()
	replayed, err := repro.ReadArrivals(&buf)
	if err != nil {
		log.Fatal(err)
	}
	direct, err := repro.RunOpen(o)
	if err != nil {
		log.Fatal(err)
	}
	ro := o
	ro.Arrivals = &repro.ArrivalSpec{Trace: replayed}
	again, err := repro.RunOpen(ro)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay check: %d arrivals serialized to %d bytes of JSON, replayed result identical: %v\n",
		tr.Len(), jsonBytes, reflect.DeepEqual(direct, again))
}
