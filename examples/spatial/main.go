// Spatial demonstrates Dynamic Spatial Sharing (§3.4): four processes share
// the 13 SMs with equal token budgets (3+3+3+4 after remainder assignment);
// the policy dynamically repartitions as kernels arrive and finish. The
// example prints per-application metrics and the SM timeline, where the
// spatial partition is visible as distinct letters across SM rows.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
)

func main() {
	scale := flag.Int("scale", 4, "benchmark scale factor (larger = faster)")
	flag.Parse()
	suite := repro.Suite()
	byName := map[string]*repro.App{}
	for _, a := range suite {
		byName[a.Name()] = a
	}
	// Two medium, one short and one long application; scaled to keep the
	// timeline readable.
	apps := []*repro.App{
		byName["histo"].Scale(*scale),
		byName["cutcp"].Scale(*scale),
		byName["spmv"].Scale(*scale),
		byName["sad"].Scale(*scale),
	}

	for _, mech := range []repro.MechanismKind{repro.MechanismContextSwitch, repro.MechanismDrain} {
		res, err := repro.Run(
			repro.Workload{Apps: apps, HighPriority: -1},
			repro.Options{
				Policy:         repro.PolicyDSS,
				Mechanism:      mech,
				RecordTimeline: true,
				MinRuns:        1,
			},
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== DSS equal sharing, %s mechanism ===\n", mech)
		for _, a := range res.Apps {
			fmt.Printf("  %-8s runs=%d turnaround=%v NTT=%.2f\n", a.Name, a.Runs, a.Turnaround, a.NTT)
		}
		fmt.Printf("  ANTT=%.2f  STP=%.2f  fairness=%.2f  preemptions=%d  ctx-saved=%d KiB\n",
			res.ANTT, res.STP, res.Fairness, res.Preemptions, res.ContextSavedBytes/1024)
		fmt.Print(repro.RenderTimeline(res.Timeline, 13, 110))
		fmt.Println()
	}
}
