// Package examples smoke-tests every runnable example: each program must
// build and run to completion (with a tiny configuration) so the examples
// cannot silently rot as the library evolves. The test is part of the
// ordinary `go test ./...` tree and therefore runs in CI.
package examples

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// smokeCases lists every example with the arguments of its tiny
// configuration. Keep this table in sync with the directories under
// examples/ — TestExamplesCovered fails if one is missing.
var smokeCases = []struct {
	name string
	args []string
}{
	{"quickstart", []string{"-scale", "64"}},
	{"mps", []string{"-scale", "16"}},
	{"spatial", []string{"-scale", "16"}},
	{"persistent", []string{"-scale", "16"}},
	{"realtime", nil}, // builder-made microbenchmark, tiny by construction
	{"opensystem", []string{"-scale", "96"}},
	{"cluster", []string{"-scale", "96"}},
	{"resilience", []string{"-scale", "96"}},
}

// TestExamplesCovered pins that every example directory appears in the
// smoke table, so a new example cannot be added without a smoke entry.
func TestExamplesCovered(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[string]bool, len(smokeCases))
	for _, c := range smokeCases {
		covered[c.name] = true
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if !covered[e.Name()] {
			t.Errorf("examples/%s has no smoke-test entry (add it to smokeCases)", e.Name())
		}
	}
}

// TestExamplesSmoke builds every example once and runs each with its tiny
// configuration, requiring a zero exit status and non-empty output.
func TestExamplesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("example smoke runs in -short mode")
	}
	bindir := t.TempDir()
	build := exec.Command("go", "build", "-o", bindir, "./...")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building examples: %v\n%s", err, out)
	}
	for _, tc := range smokeCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			cmd := exec.CommandContext(ctx, filepath.Join(bindir, tc.name), tc.args...)
			var out bytes.Buffer
			cmd.Stdout = &out
			cmd.Stderr = &out
			if err := cmd.Run(); err != nil {
				t.Fatalf("examples/%s %v: %v\n%s", tc.name, tc.args, err, out.String())
			}
			if out.Len() == 0 {
				t.Errorf("examples/%s produced no output", tc.name)
			}
		})
	}
}
