// Resilience demonstrates the request-lifecycle layer on a faulty fleet:
// the same open request stream — latency-sensitive "rt" probes with a
// completion deadline mixed with long-thread-block batch requests — served
// by four GPUs under aggressive fault injection (GPU kills mid-request),
// with three lifecycle policies:
//
//  1. none: the plain fleet. A killed GPU's in-flight requests are
//     re-dispatched immediately and unconditionally — no backoff, no budget,
//     no limit. It recovers the work, but by the exact policy that melts
//     down into a retry storm once the fleet is also overloaded.
//  2. deadline-only: arming the lifecycle layer replaces the unconditional
//     re-dispatch with an explicit retry decision; with no retry policy the
//     decision is "don't", so kill losses become visible, accounted drops.
//  3. guarded: the full treatment. Failed attempts retry on another GPU
//     under an exponential-backoff policy bounded by a token-bucket retry
//     budget; slow attempts are hedged on a second GPU at the observed p95
//     latency (first completion wins, the loser is cancelled); GPUs with
//     high rolling error rates are masked behind circuit breakers until a
//     half-open probe succeeds; and admission control sheds best-effort
//     arrivals before queues grow unboundedly.
//
// The walkthrough prints what each policy does to the kill losses: the
// guarded fleet recovers the work the deadline-only fleet drops, like the
// plain fleet does — but through bounded, budgeted, observable retries
// instead of an invisible unconditional re-dispatch loop.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	scale := flag.Int("scale", 48, "benchmark scale factor (larger = faster)")
	rate := flag.Float64("rate", 0, "offered load in requests per second (0 = 900 x scale)")
	kills := flag.Float64("kills", 2500, "injected GPU kills per simulated second")
	flag.Parse()
	if *rate <= 0 {
		*rate = 900 * float64(*scale)
	}

	// The latency-sensitive request: a small idempotent inference-style
	// kernel. Idempotency matters here: a retried or hedged attempt re-runs
	// the kernel from scratch on another GPU.
	infer, err := repro.NewApp("infer").
		Kernel(repro.KernelConfig{
			Name: "probe", ThreadBlocks: 13, TBTime: 5 * time.Microsecond,
			RegsPerTB: 4096, Idempotent: true,
		}).
		Launch("probe").Sync().
		Build()
	if err != nil {
		log.Fatal(err)
	}
	sgemm, err := repro.AppByName("sgemm")
	if err != nil {
		log.Fatal(err)
	}

	spec := &repro.ArrivalSpec{
		Process: repro.ArrivalPoisson,
		Rate:    *rate,
		Horizon: 5 * time.Millisecond,
		Classes: []repro.ArrivalClass{
			{Name: "rt", Priority: 1, Weight: 1, Deadline: 300 * time.Microsecond,
				Apps: []*repro.App{infer}},
			{Name: "batch", Priority: 0, Weight: 2,
				Apps: []*repro.App{sgemm.Scale(*scale)}},
		},
	}

	policies := []struct {
		label string
		spec  *repro.ResilienceSpec
	}{
		{"none", nil},
		{"deadline-only", &repro.ResilienceSpec{
			Timeout: 800 * time.Microsecond,
		}},
		{"guarded", &repro.ResilienceSpec{
			Timeout: 800 * time.Microsecond,
			Retry: &repro.RetryPolicy{
				MaxAttempts: 4,
				BackoffBase: 20 * time.Microsecond,
				Budget:      &repro.RetryBudget{Tokens: 20, Ratio: 0.1},
			},
			Hedge:   &repro.HedgePolicy{Quantile: 0.95, MinObs: 16},
			Breaker: &repro.BreakerPolicy{ErrorRate: 0.5},
			Shed:    &repro.ShedPolicy{PerNode: 12, Queue: 24},
		}},
	}

	fmt.Printf("offered load: %.0f req/s on 4 GPUs, %.0f kills/s injected; PPQ + adaptive preemption\n\n", *rate, *kills)
	fmt.Printf("%-14s %9s %6s %8s %6s %6s %8s %7s %6s %12s %14s\n",
		"lifecycle", "requests", "done", "dropped", "shed", "lost", "retries", "hedges", "trips", "rt-p99", "goodput(req/s)")

	var deadlineOnly, guarded *repro.ClusterResult
	for _, p := range policies {
		res, err := repro.RunCluster(repro.Options{
			Policy:     repro.PolicyPPQ,
			Mechanism:  repro.MechanismAdaptive,
			Seed:       7,
			Arrivals:   spec,
			Nodes:      4,
			Dispatch:   repro.DispatchJSQ,
			Faults:     &repro.FaultPlan{KillRate: *kills},
			Resilience: p.spec,
		})
		if err != nil {
			log.Fatal(err)
		}
		switch p.label {
		case "deadline-only":
			deadlineOnly = res
		case "guarded":
			guarded = res
		}
		// Without the lifecycle layer there is no request ledger: show the
		// attempt-level counts the plain fleet does keep.
		requests, done := res.Requests, res.ReqCompleted
		if p.spec == nil {
			requests, done = res.Admitted, res.Completed
		}
		rt := res.Classes[0]
		fmt.Printf("%-14s %9d %6d %8d %6d %6d %8d %7d %6d %12v %14.0f\n",
			p.label, requests, done, res.Dropped, res.Shed, res.Lost,
			res.Retries, res.Hedges, res.BreakerTrips, rt.LatencyP99, res.Goodput)
	}

	fmt.Println()
	if recovered := guarded.ReqCompleted - deadlineOnly.ReqCompleted; recovered > 0 {
		fmt.Printf("the guarded fleet completed %d requests the deadline-only fleet dropped,\n", recovered)
		fmt.Printf("spending %d budgeted retries and %d hedges to do it. The plain fleet\n",
			guarded.Retries, guarded.Hedges)
		fmt.Println("recovers too — via instant unbounded re-dispatch, the policy that turns")
		fmt.Println("into a retry storm under overload (see the -exp resilience sweep).")
	} else {
		fmt.Println("unexpected: the guarded fleet recovered nothing (try a higher -kills)")
	}
}
