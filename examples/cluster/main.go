// Cluster demonstrates the multi-GPU fleet layer: the same open request
// stream — latency-sensitive "rt" inference probes with a completion
// deadline mixed with long-thread-block batch requests — served by 1, 2 and
// 4 identical GPUs at an offered load that overloads one machine.
//
// Two things separate the fleets. First, capacity: one GPU saturates — it
// drags the 5ms arrival window out to ~3x its length working off batch
// backlog, serves a third of the offered goodput, and puts the rt tail over
// its deadline — while four GPUs serve the stream at speed and cut rt p99
// by more than 2x. Second, placement: at 4 GPUs the walkthrough compares
// blind round-robin dispatch against join-shortest-queue — round-robin
// keeps landing requests behind skewed backlogs (head-of-line blocking no
// per-GPU mechanism can fix), so JSQ wins the rt-class tail at identical
// hardware cost.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	scale := flag.Int("scale", 48, "benchmark scale factor (larger = faster)")
	rate := flag.Float64("rate", 0, "offered load in requests per second (0 = 1600 x scale, overloads one GPU)")
	flag.Parse()
	if *rate <= 0 {
		*rate = 1600 * float64(*scale)
	}

	// The latency-sensitive request: a small idempotent inference-style
	// kernel, one wave across the chip.
	infer, err := repro.NewApp("infer").
		Kernel(repro.KernelConfig{
			Name: "probe", ThreadBlocks: 13, TBTime: 5 * time.Microsecond,
			RegsPerTB: 4096, Idempotent: true,
		}).
		Launch("probe").Sync().
		Build()
	if err != nil {
		log.Fatal(err)
	}
	// The batch mix: long-thread-block Parboil victims.
	sgemm, err := repro.AppByName("sgemm")
	if err != nil {
		log.Fatal(err)
	}
	lbm, err := repro.AppByName("lbm")
	if err != nil {
		log.Fatal(err)
	}

	spec := &repro.ArrivalSpec{
		Process: repro.ArrivalPoisson,
		Rate:    *rate,
		Horizon: 5 * time.Millisecond,
		Classes: []repro.ArrivalClass{
			{Name: "rt", Priority: 1, Weight: 1, Deadline: 30 * time.Microsecond,
				Apps: []*repro.App{infer}},
			{Name: "batch", Priority: 0, Weight: 2,
				Apps: []*repro.App{sgemm.Scale(*scale), lbm.Scale(*scale)}},
		},
	}

	run := func(gpus int, dispatch repro.DispatchKind) *repro.ClusterResult {
		res, err := repro.RunCluster(repro.Options{
			Policy:    repro.PolicyPPQ,
			Mechanism: repro.MechanismAdaptive,
			Seed:      7,
			Arrivals:  spec,
			Nodes:     gpus,
			Dispatch:  dispatch,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	rt := func(res *repro.ClusterResult) repro.ClassReport { return res.Classes[0] }

	fmt.Printf("offered load: %.0f req/s (overloads one GPU); PPQ + adaptive preemption on every GPU\n\n", *rate)

	// Part 1: fleet scaling under JSQ — capacity buys back the tail. The
	// "end" column is the overload tell: one GPU works the 5ms arrival
	// window off long after it closes, so its goodput is a fraction of the
	// offered load.
	fmt.Println("=== 1 vs 2 vs 4 GPUs, join-shortest-queue dispatch ===")
	fmt.Printf("%-5s %9s %6s %12s %12s %12s %10s %14s\n",
		"gpus", "admitted", "done", "end", "rt-p50", "rt-p99", "rt-miss", "goodput(req/s)")
	var jsq4 *repro.ClusterResult // reused in part 2: identical runs are deterministic
	for _, gpus := range []int{1, 2, 4} {
		res := run(gpus, repro.DispatchJSQ)
		if gpus == 4 {
			jsq4 = res
		}
		c := rt(res)
		fmt.Printf("%-5d %9d %6d %12v %12v %12v %9.1f%% %14.0f\n",
			gpus, res.Admitted, res.Completed, res.EndTime.Round(10*time.Microsecond),
			c.LatencyP50, c.LatencyP99, c.MissRate*100, res.Goodput)
	}

	// Part 2: placement at fixed hardware — JSQ vs blind round-robin.
	fmt.Println("\n=== 4 GPUs: round-robin vs join-shortest-queue ===")
	fmt.Printf("%-12s %12s %12s %10s %s\n", "dispatch", "rt-p99", "rt-wait-p95", "rt-miss", "per-gpu admitted")
	var rr, jsq repro.ClassReport
	for _, d := range []repro.DispatchKind{repro.DispatchRoundRobin, repro.DispatchJSQ} {
		res := jsq4
		if d == repro.DispatchRoundRobin {
			res = run(4, d)
		}
		c := rt(res)
		shares := ""
		for _, n := range res.Nodes {
			shares += fmt.Sprintf("%d ", n.Admitted)
		}
		fmt.Printf("%-12s %12v %12v %9.1f%% %s\n", d, c.LatencyP99, c.WaitP95, c.MissRate*100, shares)
		if d == repro.DispatchRoundRobin {
			rr = c
		} else {
			jsq = c
		}
	}
	if jsq.LatencyP99 < rr.LatencyP99 {
		fmt.Printf("\nJSQ beats round-robin on rt-class p99 by %v at identical hardware cost:\n", rr.LatencyP99-jsq.LatencyP99)
		fmt.Println("round-robin ignores backlog, so every fourth request lands behind the")
		fmt.Println("most loaded GPU — queueing delay no per-GPU preemption mechanism can fix.")
	} else {
		fmt.Println("\nunexpected: round-robin matched JSQ at this load (try a higher -rate)")
	}
}
