// Persistent demonstrates the paper's second motivation (§2.4): guaranteeing
// forward progress when a persistent-threads kernel occupies the GPU. The
// persistent kernel's thread blocks effectively never finish, so the
// draining mechanism can never preempt it and the victim application
// starves; the context-switch mechanism preempts it and the victim makes
// progress.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	scale := flag.Int("scale", 4, "victim benchmark scale factor (larger = faster)")
	flag.Parse()
	// A persistent kernel: 13 thread blocks that spin for a very long time
	// (emulating persistent threads polling for work).
	persistent, err := repro.NewApp("persistent").
		Kernel(repro.KernelConfig{
			Name:         "spin",
			ThreadBlocks: 13,
			TBTime:       10 * time.Second, // effectively forever
			RegsPerTB:    40000,
		}).
		Launch("spin").
		Build()
	if err != nil {
		log.Fatal(err)
	}
	victim, err := repro.AppByName("spmv")
	if err != nil {
		log.Fatal(err)
	}
	victim = victim.Scale(*scale)

	w := repro.Workload{Apps: []*repro.App{persistent, victim}, HighPriority: 1}
	for _, mech := range []repro.MechanismKind{repro.MechanismDrain, repro.MechanismContextSwitch} {
		res, err := repro.Run(w, repro.Options{
			Policy:     repro.PolicyPPQ,
			Mechanism:  mech,
			MinRuns:    3,
			MaxSimTime: 200 * time.Millisecond, // give the drain case a bounded stage
		})
		if err != nil {
			log.Fatal(err)
		}
		v := res.Apps[1]
		fmt.Printf("=== PPQ with %s ===\n", mech)
		if v.Starved || v.Runs == 0 {
			fmt.Printf("  %s STARVED: the persistent kernel cannot be preempted by draining\n", v.Name)
		} else {
			fmt.Printf("  %s completed %d runs, mean turnaround %v (preemptions: %d)\n",
				v.Name, v.Runs, v.Turnaround, res.Preemptions)
		}
		fmt.Printf("  simulation ended at %v, completed=%v\n\n", res.EndTime, res.Completed)
	}
}
