// Realtime reproduces the motivating example of Figure 2: a soft real-time
// kernel (K3, high priority, with a deadline) competes with two long
// low-priority kernels (K1, K2). Under FCFS the deadline is blown; a
// non-preemptive priority scheduler helps; only preemptive priority meets
// tight deadlines. The example prints the ASCII SM timeline of each case.
//
// A second part keeps the preemptive priority scheduler fixed and sweeps
// the preemption mechanism instead: draining blows the deadline on long
// thread blocks, context switch pays save/restore traffic, flush preempts
// the (idempotent) victims almost instantly at the price of re-executed
// work, and the adaptive cost model picks whichever is cheapest for each
// preemption.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func mustApp(b *repro.AppBuilder) *repro.App {
	a, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return a
}

func main() {
	// K1, K2: long kernels (26 thread blocks of 400us at occupancy 1:
	// two full waves over 13 SMs, about 800us each).
	longKernel := func(name string, startDelay time.Duration) *repro.App {
		// The long kernels are data-parallel (idempotent), so the flush
		// mechanism in part 2 may cancel and restart their thread blocks.
		return mustApp(repro.NewApp(name).
			Kernel(repro.KernelConfig{
				Name: name + ".kernel", ThreadBlocks: 26,
				TBTime: 400 * time.Microsecond, RegsPerTB: 40000,
				Idempotent: true,
			}).
			CPU(startDelay).
			Launch(name + ".kernel"))
	}
	k1 := longKernel("K1", 0)
	k2 := longKernel("K2", 5*time.Microsecond)
	// K3: a soft real-time kernel (13 thread blocks of 30us) launched
	// 100us into the run, with a 250us deadline from its launch.
	k3 := mustApp(repro.NewApp("K3").
		Kernel(repro.KernelConfig{
			Name: "K3.kernel", ThreadBlocks: 13,
			TBTime: 30 * time.Microsecond, RegsPerTB: 4000,
		}).
		CPU(100 * time.Microsecond).
		Launch("K3.kernel"))
	deadline := 250*time.Microsecond + 100*time.Microsecond // launch offset + deadline

	w := repro.Workload{Apps: []*repro.App{k1, k2, k3}, HighPriority: 2}
	for _, cfg := range []struct {
		label string
		opts  repro.Options
	}{
		{"(a) FCFS, as in current GPUs", repro.Options{Policy: repro.PolicyFCFS}},
		{"(b) nonpreemptive priority (NPQ)", repro.Options{Policy: repro.PolicyNPQ}},
		{"(c) preemptive priority (PPQ + context switch)",
			repro.Options{Policy: repro.PolicyPPQ, Mechanism: repro.MechanismContextSwitch}},
	} {
		opts := cfg.opts
		opts.MinRuns = 1
		opts.Jitter = -1 // deterministic, to match the figure's clean timeline
		opts.RecordTimeline = true
		res, err := repro.Run(w, opts)
		if err != nil {
			log.Fatal(err)
		}
		k3m := res.Apps[2]
		verdict := "MISSED"
		if k3m.Turnaround <= deadline {
			verdict = "met"
		}
		fmt.Printf("=== %s ===\n", cfg.label)
		fmt.Printf("K3 turnaround: %v (deadline %v: %s)\n", k3m.Turnaround, deadline, verdict)
		fmt.Print(repro.RenderTimeline(res.Timeline, 13, 110))
		fmt.Println()
	}

	// Part 2: same preemptive priority scheduler, sweeping the preemption
	// mechanism. The victims' 400us thread blocks make draining miss the
	// deadline; the other mechanisms preempt in microseconds and differ only
	// in what the preemption costs the victims.
	fmt.Println("=== preemption-mechanism sweep (PPQ, 250us deadline) ===")
	fmt.Printf("%-16s %14s  %-8s %12s %12s\n", "mechanism", "K3 turnaround", "deadline", "ctx saved", "wasted work")
	for _, mech := range []repro.MechanismKind{
		repro.MechanismDrain,
		repro.MechanismContextSwitch,
		repro.MechanismFlush,
		repro.MechanismAdaptive,
	} {
		res, err := repro.Run(w, repro.Options{
			Policy:    repro.PolicyPPQ,
			Mechanism: mech,
			MinRuns:   1,
			Jitter:    -1,
		})
		if err != nil {
			log.Fatal(err)
		}
		k3m := res.Apps[2]
		verdict := "MISSED"
		if k3m.Turnaround <= deadline {
			verdict = "met"
		}
		fmt.Printf("%-16s %14v  %-8s %12d %12v\n",
			mech, k3m.Turnaround, verdict, res.ContextSavedBytes, res.WastedWork)
	}
}
