package repro

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// AppBuilder constructs custom application traces through the public API —
// used to model workloads beyond the Parboil suite, such as the persistent-
// threads kernels of §2.4.
type AppBuilder struct {
	app    *trace.App
	byName map[string]int
	err    error
}

// NewApp starts building an application trace.
func NewApp(name string) *AppBuilder {
	return &AppBuilder{
		app:    &trace.App{Name: name, Class1: trace.ClassMedium, Class2: trace.ClassMedium},
		byName: make(map[string]int),
	}
}

// KernelConfig describes a custom kernel.
type KernelConfig struct {
	// Name identifies the kernel.
	Name string
	// ThreadBlocks is the number of thread blocks per launch.
	ThreadBlocks int
	// TBTime is the execution time of one resident thread block.
	TBTime time.Duration
	// RegsPerTB is registers per thread block (total across threads).
	RegsPerTB int
	// SharedMemPerTB is bytes of shared memory per thread block.
	SharedMemPerTB int
	// ThreadsPerTB is threads per thread block. Default 256.
	ThreadsPerTB int
	// Idempotent marks a kernel whose thread blocks can be cancelled and
	// re-executed from scratch (no atomics or other order-dependent global
	// updates), making it eligible for the flush preemption mechanism.
	Idempotent bool
}

// Kernel registers a kernel with the application.
func (b *AppBuilder) Kernel(cfg KernelConfig) *AppBuilder {
	if b.err != nil {
		return b
	}
	if _, dup := b.byName[cfg.Name]; dup {
		b.err = fmt.Errorf("repro: duplicate kernel %q", cfg.Name)
		return b
	}
	if cfg.ThreadsPerTB <= 0 {
		cfg.ThreadsPerTB = 256
	}
	b.byName[cfg.Name] = len(b.app.Kernels)
	b.app.Kernels = append(b.app.Kernels, trace.KernelSpec{
		Name:           cfg.Name,
		NumTBs:         cfg.ThreadBlocks,
		TBTime:         sim.Time(cfg.TBTime.Nanoseconds()),
		RegsPerTB:      cfg.RegsPerTB,
		SharedMemPerTB: cfg.SharedMemPerTB,
		ThreadsPerTB:   cfg.ThreadsPerTB,
		Launches:       0,
		Idempotent:     cfg.Idempotent,
	})
	return b
}

// CPU appends a CPU compute segment.
func (b *AppBuilder) CPU(d time.Duration) *AppBuilder {
	b.app.Ops = append(b.app.Ops, trace.Op{Kind: trace.OpCPU, Dur: sim.Time(d.Nanoseconds())})
	return b
}

// H2D appends an asynchronous host-to-device transfer.
func (b *AppBuilder) H2D(bytes int64) *AppBuilder {
	b.app.Ops = append(b.app.Ops, trace.Op{Kind: trace.OpH2D, Bytes: bytes})
	return b
}

// D2H appends an asynchronous device-to-host transfer.
func (b *AppBuilder) D2H(bytes int64) *AppBuilder {
	b.app.Ops = append(b.app.Ops, trace.Op{Kind: trace.OpD2H, Bytes: bytes})
	return b
}

// Launch appends an asynchronous launch of a registered kernel.
func (b *AppBuilder) Launch(kernel string) *AppBuilder {
	if b.err != nil {
		return b
	}
	idx, ok := b.byName[kernel]
	if !ok {
		b.err = fmt.Errorf("repro: launch of unregistered kernel %q", kernel)
		return b
	}
	b.app.Kernels[idx].Launches++
	b.app.Ops = append(b.app.Ops, trace.Op{Kind: trace.OpLaunch, Kernel: idx})
	return b
}

// Sync appends a synchronization point (the CPU blocks until all enqueued
// commands complete).
func (b *AppBuilder) Sync() *AppBuilder {
	b.app.Ops = append(b.app.Ops, trace.Op{Kind: trace.OpSync})
	return b
}

// Build validates and returns the application.
func (b *AppBuilder) Build() (*App, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.app.Validate(); err != nil {
		return nil, err
	}
	return &App{t: b.app}, nil
}
