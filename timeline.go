package repro

import (
	"fmt"
	"strings"
	"time"
)

// RenderTimeline draws an ASCII Gantt chart of SM activity: one row per SM,
// one column per time bucket. Each context gets a letter (A, B, C, ...);
// lower-case letters mark draining, '$' marks context saving, '.' marks SM
// setup and ' ' idle time. A legend maps letters to kernels.
func RenderTimeline(intervals []TimelineInterval, numSMs, width int) string {
	if len(intervals) == 0 {
		return "(empty timeline)\n"
	}
	if width <= 0 {
		width = 100
	}
	var tmin, tmax time.Duration
	tmin = intervals[0].Start
	for _, iv := range intervals {
		if iv.Start < tmin {
			tmin = iv.Start
		}
		if iv.End > tmax {
			tmax = iv.End
		}
	}
	if tmax <= tmin {
		return "(empty timeline)\n"
	}
	span := tmax - tmin
	bucket := span / time.Duration(width)
	if bucket <= 0 {
		bucket = 1
	}

	rows := make([][]byte, numSMs)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	ctxLetters := map[int]byte{}
	legend := map[int]string{}
	letterFor := func(ctx int, kernel string) byte {
		if b, ok := ctxLetters[ctx]; ok {
			if !strings.Contains(legend[ctx], kernel) {
				legend[ctx] += " " + kernel
			}
			return b
		}
		b := byte('A' + len(ctxLetters)%26)
		ctxLetters[ctx] = b
		legend[ctx] = kernel
		return b
	}

	for _, iv := range intervals {
		if iv.SM < 0 || iv.SM >= numSMs {
			continue
		}
		letter := letterFor(iv.Ctx, iv.Kernel)
		var ch byte
		switch iv.Kind {
		case "run":
			ch = letter
		case "drain":
			ch = letter + ('a' - 'A')
		case "save":
			ch = '$'
		case "setup":
			ch = '.'
		default:
			ch = '?'
		}
		b0 := int((iv.Start - tmin) / bucket)
		b1 := int((iv.End - tmin) / bucket)
		if b1 >= width {
			b1 = width - 1
		}
		for x := b0; x <= b1 && x < width; x++ {
			rows[iv.SM][x] = ch
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "time: %v .. %v (one column = %v)\n", tmin, tmax, bucket)
	for i, row := range rows {
		fmt.Fprintf(&sb, "SM%02d |%s|\n", i, string(row))
	}
	sb.WriteString("legend: ")
	for ctx := 0; ctx < len(ctxLetters)+8; ctx++ {
		if b, ok := ctxLetters[ctx]; ok {
			fmt.Fprintf(&sb, "%c=ctx%d(%s) ", b, ctx, legend[ctx])
		}
	}
	sb.WriteString("lower-case=draining $=context-save .=setup\n")
	return sb.String()
}
